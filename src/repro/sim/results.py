"""Result containers for single runs and load sweeps (JSON-friendly)."""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field


@dataclass(frozen=True)
class RunResult:
    """Measured outcome of one (config, load) simulation run."""

    scheme: str
    pattern: str
    num_vcs: int
    load: float
    cycles: int
    messages_delivered: int
    throughput_fpc: float
    mean_latency: float
    latency_max: int
    deadlocks: int
    normalized_deadlocks: float
    transactions_completed: int
    mean_txn_latency: float
    queue_mode: str = "auto"

    def to_dict(self) -> dict:
        return asdict(self)


@dataclass
class SweepResult:
    """A Burton-Normal-Form curve: one RunResult per applied load."""

    label: str
    points: list[RunResult] = field(default_factory=list)

    def throughputs(self) -> list[float]:
        return [p.throughput_fpc for p in self.points]

    def latencies(self) -> list[float]:
        return [p.mean_latency for p in self.points]

    def loads(self) -> list[float]:
        return [p.load for p in self.points]

    def saturation_throughput(self) -> float:
        """Highest delivered throughput along the curve (the knee)."""
        return max(self.throughputs(), default=0.0)

    def latency_at_load(self, load: float) -> float:
        for p in self.points:
            if abs(p.load - load) < 1e-12:
                return p.mean_latency
        raise KeyError(f"no point at load {load}")

    def to_dict(self) -> dict:
        return {"label": self.label, "points": [p.to_dict() for p in self.points]}

    def to_json(self, **kwargs) -> str:
        return json.dumps(self.to_dict(), **kwargs)


def burton_normal_form(sweep: SweepResult) -> list[tuple[float, float]]:
    """(throughput, latency) pairs for plotting (Section 4.3.1)."""
    return list(zip(sweep.throughputs(), sweep.latencies()))
