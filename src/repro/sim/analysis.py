"""Post-run diagnostics: per-type latency and endpoint coupling.

The paper's Figure 10/11 story is that *inter-message coupling* at the
NI queues — heterogeneous types blocking behind each other — limits DR
and PR once channels are abundant. These tools quantify that directly:

* :func:`type_breakdown` — delivered counts, mean latency, source-queue
  wait and in-network time per message type;
* :class:`OccupancyMonitor` — periodic samples of NI queue occupancy by
  message type, from which :func:`coupling_index` computes the mean
  fraction of head-of-line blocking caused by a *different* type than
  the one waiting behind it.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field


def type_breakdown(stats) -> dict[str, dict[str, float]]:
    """Per-message-type means derived from ``SimStats.by_type``."""
    out: dict[str, dict[str, float]] = {}
    for name, row in stats.by_type.items():
        n = max(1, row["delivered"])
        out[name] = {
            "delivered": row["delivered"],
            "flits": row["flits"],
            "mean_latency": row["latency_sum"] / n,
            "mean_queue_wait": row["queue_wait_sum"] / n,
            "mean_network_time": row["network_sum"] / n,
            "rescued": row["rescued"],
        }
    return out


@dataclass
class OccupancyMonitor:
    """Samples NI input-queue composition every ``interval`` cycles.

    Attach by calling :meth:`maybe_sample` from your run loop (or use
    :func:`run_with_monitor`). Cheap: one pass over NI queues per
    sample.
    """

    engine: object
    interval: int = 100
    samples: int = 0
    #: head-of-line pairs observed: (head type, waiting type) -> count
    hol_pairs: Counter = field(default_factory=Counter)
    occupancy_by_type: Counter = field(default_factory=Counter)

    def maybe_sample(self, now: int) -> None:
        if now % self.interval:
            return
        self.samples += 1
        for ni in self.engine.interfaces:
            for q in ni.in_bank:
                entries = q.entries
                for msg in entries:
                    self.occupancy_by_type[msg.mtype.name] += 1
                if len(entries) >= 2:
                    head = entries[0].mtype.name
                    for waiter in list(entries)[1:]:
                        self.hol_pairs[(head, waiter.mtype.name)] += 1

    def coupling_index(self) -> float:
        """Fraction of queued-behind-head slots held up by a *different*
        message type — 0.0 means queues are effectively homogeneous
        (SA/QA behaviour), values near 1.0 mean heavy type coupling."""
        total = sum(self.hol_pairs.values())
        if total == 0:
            return 0.0
        cross = sum(
            c for (head, waiter), c in self.hol_pairs.items() if head != waiter
        )
        return cross / total


def run_with_monitor(engine, cycles: int, interval: int = 100) -> OccupancyMonitor:
    """Run ``cycles`` steps while sampling queue composition."""
    monitor = OccupancyMonitor(engine, interval=interval)
    for _ in range(cycles):
        engine.step()
        monitor.maybe_sample(engine.now)
    return monitor


def format_breakdown(stats) -> str:
    """Human-readable per-type table (used by examples and the CLI)."""
    rows = type_breakdown(stats)
    lines = [
        f"{'type':8s} {'count':>8s} {'latency':>9s} {'queue':>8s} "
        f"{'network':>8s} {'rescued':>8s}"
    ]
    for name in sorted(rows):
        r = rows[name]
        lines.append(
            f"{name:8s} {r['delivered']:8.0f} {r['mean_latency']:8.1f}c "
            f"{r['mean_queue_wait']:7.1f}c {r['mean_network_time']:7.1f}c "
            f"{r['rescued']:8.0f}"
        )
    return "\n".join(lines)
