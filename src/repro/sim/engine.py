"""The simulation engine: assembles substrates and runs the cycle loop.

Per cycle, in order: traffic generation, endpoint work (transaction
admission, injection loading, memory-controller service), fabric flit
movement, and the scheme's detection/recovery actions; optionally a
periodic CWG deadlock check (the paper's 50-cycle mode).
"""

from __future__ import annotations

from repro.config import SimConfig
from repro.core.cwg import detect_deadlock
from repro.core.schemes import Scheme, build_scheme
from repro.endpoint.interface import NetworkInterface
from repro.faults.injector import FaultInjector
from repro.network.fabric import Fabric
from repro.network.topology import build_topology
from repro.protocol.chains import Protocol
from repro.protocol.transactions import PATTERNS
from repro.sim.invariants import InvariantChecker, QuiesceResult, capture_dump
from repro.sim.stats import SimStats, WindowCounters
from repro.traffic.synthetic import SyntheticTraffic, pattern_couplings
from repro.util.errors import ConfigurationError


class Engine:
    """One simulated network plus endpoints under one scheme."""

    #: NI implementation; the vector backend substitutes a subclass that
    #: reports endpoint activity to its event scheduler.
    interface_class = NetworkInterface

    def __init__(
        self,
        config: SimConfig,
        traffic=None,
        protocol: Protocol | None = None,
        types_used: tuple[str, ...] | None = None,
        couplings: set[tuple[str, str]] | None = None,
    ) -> None:
        """Build a simulator.

        With no explicit ``traffic``, synthetic traffic over
        ``config.pattern`` is used and the protocol/type/coupling
        information is derived from the pattern.  Trace-driven runs pass
        their own traffic source plus protocol metadata.
        """
        self.config = config
        self.topology = build_topology(
            config.topology,
            dims=config.dims,
            bristling=config.bristling,
            file=config.topology_file,
        )

        if traffic is None:
            pattern = PATTERNS.get(config.pattern)
            if pattern is None:
                raise ConfigurationError(f"unknown pattern {config.pattern!r}")
            traffic = SyntheticTraffic(pattern, config.load, config.seed)
            protocol = pattern.protocol
            types_used = pattern.types_used
            couplings = pattern_couplings(pattern)
        elif protocol is None or types_used is None or couplings is None:
            raise ConfigurationError(
                "custom traffic requires protocol, types_used and couplings"
            )

        self.protocol = protocol
        self.traffic = traffic
        self.scheme: Scheme = build_scheme(
            config, self.topology, protocol, types_used, couplings
        )
        self.fabric = self._build_fabric(config)
        self.stats = SimStats(self)
        self.interfaces = [
            type(self).interface_class(
                node,
                self.fabric,
                self.scheme,
                self.stats,
                queue_capacity=config.queue_capacity,
                num_queue_classes=self.scheme.num_queue_classes,
                max_outstanding=config.max_outstanding,
            )
            for node in range(self.topology.num_nodes)
        ]
        self.scheme.attach(self)
        self.traffic.attach(self)
        self.now = 0
        self.cwg_knots_seen = 0
        #: telemetry tracer (``repro.telemetry.Tracer``) or None; kept
        #: off SimConfig so trace settings never perturb cache keys.
        self.tracer = None
        # Hoisted config read for the per-cycle loop.
        self._cwg_interval = config.cwg_interval
        # Robustness layer: both default to None so the healthy hot path
        # pays one `is None` test per cycle each.
        self.faults: FaultInjector | None = (
            FaultInjector(self, config.faults, config.seed)
            if config.faults else None
        )
        self.invariants: InvariantChecker | None = (
            InvariantChecker(
                self,
                every=config.invariants_every,
                watchdog=config.watchdog_timeout,
            )
            if config.invariants_every or config.watchdog_timeout else None
        )

    # ------------------------------------------------------------------
    @property
    def detector(self):
        """The scheme's detection mechanism (None for SA)."""
        return self.scheme.detector

    def attach_tracer(self, tracer) -> None:
        """Install a :class:`repro.telemetry.Tracer` on every hook site."""
        self.tracer = tracer
        tracer.attach(self)

    # ------------------------------------------------------------------
    def step(self) -> None:
        """Advance the whole system by one cycle."""
        self.now += 1
        now = self.now
        if self.faults is not None:
            # Before traffic: a fault applied at cycle t shapes cycle t.
            self.faults.step(now)
        self.traffic.step(now)
        for ni in self.interfaces:
            ni.step(now)
        self.fabric.step(now)
        self.scheme.step(now)
        if self._cwg_interval and now % self._cwg_interval == 0:
            knots = detect_deadlock(self)
            if knots:
                self.cwg_knots_seen += len(knots)
        self.stats.on_cycle(now)
        if self.tracer is not None:
            self.tracer.on_cycle(now)
        if self.invariants is not None:
            self.invariants.on_cycle(now)

    def run(self, cycles: int) -> None:
        for _ in range(cycles):
            self.step()

    def run_measured(self, warmup: int, measure: int) -> WindowCounters:
        """Warm up, open the measurement window, run, and return it."""
        self.run(warmup)
        self.stats.begin_window(self.now)
        self.run(measure)
        return self.stats.end_window(self.now)

    # ------------------------------------------------------------------
    # Introspection helpers (tests, examples)
    # ------------------------------------------------------------------
    def total_queued_messages(self) -> int:
        return sum(
            ni.in_bank.total_occupancy() + ni.out_bank.total_occupancy()
            for ni in self.interfaces
        )

    def quiesce(self, max_cycles: int = 200_000) -> QuiesceResult:
        """Stop traffic and drain; truthy if the system empties.

        Used by conservation tests: with generation off, every in-flight
        message should eventually be delivered and consumed (unless an
        unrecovered deadlock exists).  A failed drain returns a falsy
        :class:`~repro.sim.invariants.QuiesceResult` whose ``dump``
        reports exactly which resources still hold messages.
        """
        saved_load = getattr(self.traffic, "load", None)
        if saved_load is not None:
            self.traffic.load = 0.0
        try:
            for _ in range(max_cycles):
                if self._empty():
                    return QuiesceResult(True)
                self.step()
            if self._empty():
                return QuiesceResult(True)
            return QuiesceResult(
                False,
                capture_dump(
                    self, reason=f"quiesce failed after {max_cycles} cycles"
                ),
            )
        finally:
            if saved_load is not None:
                self.traffic.load = saved_load

    def _build_fabric(self, config: SimConfig) -> Fabric:
        """Fabric factory; the vector backend overrides this."""
        return Fabric(
            self.topology,
            config.num_vcs,
            config.flit_buffer_depth,
            self.scheme.routing,
        )

    def _empty(self) -> bool:
        if self.fabric.occupancy() > 0 or self.fabric.pending:
            return False
        if self.total_queued_messages() > 0:
            return False
        for ni in self.interfaces:
            if ni.source_queue or not ni.controller.idle:
                return False
        for chan in self.fabric._inj_channels.values():
            if chan.owner is not None:
                return False
        controller = getattr(self.scheme, "controller", None)
        if controller is not None and getattr(controller, "phase", "idle") != "idle":
            return False  # a progressive rescue is still in flight
        traffic = self.traffic
        # Trace-driven sources need not expose ``load``; treat a missing
        # attribute as "not generating" rather than raising.
        if (
            getattr(traffic, "exhausted", True) is False
            and getattr(traffic, "load", 0) > 0
        ):
            return False
        return True


def build_engine(config: SimConfig, **kwargs) -> Engine:
    """Instantiate the engine implementation ``config.backend`` selects.

    ``"reference"`` is the object-per-flit :class:`Engine`; ``"vector"``
    the struct-of-arrays backend (:class:`repro.sim.vector.VectorEngine`),
    which produces bit-identical results (see tests/test_backend_equivalence).
    """
    if config.backend == "vector":
        from repro.sim.vector import VectorEngine

        return VectorEngine(config, **kwargs)
    return Engine(config, **kwargs)
