"""Parallel sweep-point execution with an on-disk result cache.

Every (config, load) point of a sweep is independent and deterministic
— the engine derives all randomness from ``config.seed`` via
:func:`repro.util.rng.make_rng` — so points can fan out across a
:class:`~concurrent.futures.ProcessPoolExecutor` and still produce
results bit-identical to a serial run.  :func:`run_points` is the single
entry point: ordered result collection, a retry for crashed workers
(reported with their config via
:class:`~repro.util.errors.SweepExecutionError`, never silently
dropped), and a keyed JSON cache under ``.repro_cache/`` so interrupted
paper-scale runs resume instead of restarting.

Cache keys cover the full :class:`~repro.config.SimConfig`, the
warmup/measure window *and* a digest of the package sources
(:func:`code_version`), so editing the simulator invalidates stale
results automatically.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from collections.abc import Callable, Sequence
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, as_completed, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict, dataclass
from functools import lru_cache
from pathlib import Path

import repro
from repro.config import ExecutionConfig, SimConfig
from repro.sim.results import RunResult
from repro.util.backoff import BackoffPolicy
from repro.util.errors import PointTimeoutError, SweepExecutionError
from repro.util.progress import ProgressReporter

#: default location of the on-disk result cache.
DEFAULT_CACHE_DIR = ".repro_cache"

PointFn = Callable[[SimConfig, int, int], RunResult]

#: pause applied before every retry round/wave so a flapping worker is
#: probed at a geometrically decreasing rate instead of being hammered;
#: jitter draws are seeded, so retry timelines reproduce exactly.
DEFAULT_BACKOFF = BackoffPolicy(base=0.1, factor=2.0, cap=5.0, jitter=0.5)

#: module-level so tests can observe/neutralize the retry pauses.
_sleep = time.sleep

#: process-wide execution policy; the library default is the legacy
#: behaviour (serial, no cache) so tests and benchmarks are unaffected.
#: The CLI and experiment runner install their own via
#: :func:`set_default_execution`.
_default_execution = ExecutionConfig(workers=1, use_cache=False)


def get_default_execution() -> ExecutionConfig:
    """The execution policy used when a caller does not pass one."""
    return _default_execution


def set_default_execution(execution: ExecutionConfig) -> ExecutionConfig:
    """Install a new process-wide policy; returns the previous one."""
    global _default_execution
    previous = _default_execution
    _default_execution = execution
    return previous


@lru_cache(maxsize=1)
def code_version() -> str:
    """Digest of the ``repro`` package sources, for cache invalidation."""
    root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode("utf-8"))
        digest.update(path.read_bytes())
    return digest.hexdigest()[:16]


def point_key(config: SimConfig, warmup: int, measure: int,
              code: str | None = None) -> str:
    """Stable cache key for one (config, warmup, measure) point.

    ``asdict(config)`` already folds in every config field, but the
    detector configuration is additionally spelled out: two runs that
    differ only in detection mechanism or thresholds produce different
    results, and a key omitting them (as a refactor of the config
    serialization could silently reintroduce) would alias their cache
    entries.  The explicit section makes that collision structurally
    impossible; ``tests/test_parallel.py`` pins it.
    """
    payload = {
        "config": asdict(config),
        "detector": {
            "kind": config.detector,
            "detection_threshold": config.detection_threshold,
            "occupancy_threshold": config.occupancy_threshold,
            "timeout_threshold": config.timeout_threshold,
            "cmh_block_threshold": config.cmh_block_threshold,
            "cmh_probe_interval": config.cmh_probe_interval,
        },
        "warmup": int(warmup),
        "measure": int(measure),
        "code": code if code is not None else code_version(),
    }
    blob = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultCache:
    """Keyed on-disk store of :class:`RunResult`s, one JSON file each.

    Writes are atomic (temp file + rename) so concurrent workers — or an
    interrupted run — can never leave a half-written entry behind; a
    corrupt or unreadable file simply reads as a miss.
    """

    def __init__(self, root: str | Path = DEFAULT_CACHE_DIR) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def get(self, key: str) -> RunResult | None:
        path = self.path_for(key)
        try:
            payload = json.loads(path.read_text("utf-8"))
            result = RunResult(**payload["result"])
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, key: str, config: SimConfig, warmup: int, measure: int,
            result: RunResult) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        payload = {
            "key": key,
            "code": code_version(),
            "config": asdict(config),
            "warmup": int(warmup),
            "measure": int(measure),
            "result": result.to_dict(),
        }
        blob = json.dumps(payload, sort_keys=True, default=str, indent=1)
        # Unique temp file per put: concurrent writers of the same key
        # (racing farm twins, a resumed manager next to a live one) must
        # each rename a fully written file, so readers see one complete
        # entry or another — never an interleaved one.
        fd, tmp_name = tempfile.mkstemp(
            dir=self.root, prefix=f".{key[:16]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(blob)
            os.replace(tmp_name, self.path_for(key))
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise


@dataclass
class PointResolution:
    """The cache's answer for a batch of points: hits, keys, misses.

    This is the one dedup implementation shared by local execution
    (:func:`run_points`), farm planning
    (:func:`repro.farm.plan.resolve_cached`) and the campaign service's
    pre-schedule dedup (:mod:`repro.service`): every consumer sees the
    same keys, so a point computed by any of them is a hit for all.
    """

    #: cache key per point, in input order.
    keys: list[str]
    #: cache hit per point (None where the cache missed).
    results: list[RunResult | None]
    #: indices of the points still to compute, in input order.
    missing: list[int]

    @property
    def total(self) -> int:
        return len(self.results)

    @property
    def cached(self) -> int:
        return self.total - len(self.missing)


def resolve_points(
    configs: Sequence[SimConfig],
    warmup: int,
    measure: int,
    cache: ResultCache | None,
    *,
    keys: Sequence[str] | None = None,
) -> PointResolution:
    """Resolve a batch of points against the cache (dedup, no execution).

    With ``cache=None`` every point is a miss (the keys are still
    computed, so callers can schedule and later write back).  ``keys``
    lets callers that already hold the batch's keys skip recomputing
    the config digests.
    """
    if keys is None:
        keys = [point_key(config, warmup, measure) for config in configs]
    else:
        keys = list(keys)
        if len(keys) != len(configs):
            raise ValueError(
                f"{len(keys)} keys for {len(configs)} configs"
            )
    resolution = PointResolution(
        keys=keys, results=[None] * len(keys), missing=[]
    )
    for idx, key in enumerate(keys):
        hit = cache.get(key) if cache is not None else None
        if hit is not None:
            resolution.results[idx] = hit
        else:
            resolution.missing.append(idx)
    return resolution


def _timed(point_fn: PointFn, config: SimConfig, warmup: int,
           measure: int) -> tuple[RunResult, float]:
    """Worker-side wrapper adding per-point wall-clock timing."""
    start = time.monotonic()
    result = point_fn(config, warmup, measure)
    return result, time.monotonic() - start


def _default_point_fn() -> PointFn:
    from repro.sim.sweep import run_point

    return run_point


def run_points(
    configs: Sequence[SimConfig],
    warmup: int,
    measure: int,
    workers: int = 1,
    *,
    cache: ResultCache | None = None,
    retries: int = 1,
    point_fn: PointFn | None = None,
    reporter: ProgressReporter | None = None,
    timeout: float | None = None,
    backoff: BackoffPolicy | None = None,
) -> list[RunResult]:
    """Run every config's point, fanned across ``workers`` processes.

    Results come back in the order of ``configs`` regardless of
    completion order.  Cached points are returned without touching the
    engine; executed points are written back to ``cache``.  A point
    whose worker raises (or whose pool dies underneath it) is retried up
    to ``retries`` more times; if it still fails, the whole batch raises
    :class:`SweepExecutionError` naming each failed config — successful
    points of the batch stay in the cache, so a rerun resumes.

    With ``timeout`` set, a point running longer than that many
    wall-clock seconds has its worker killed and is retried like a
    crashed point; exhausted retries surface as a
    :class:`~repro.util.errors.PointTimeoutError` inside the
    :class:`SweepExecutionError`, so one wedged point can never hang a
    whole campaign.  Timed execution always uses worker processes (even
    with ``workers=1``) because an in-process point cannot be killed.
    """
    configs = list(configs)
    if point_fn is None:
        point_fn = _default_point_fn()
    if reporter is None:
        reporter = ProgressReporter(total=len(configs), enabled=False)
    if backoff is None:
        backoff = DEFAULT_BACKOFF

    resolution = resolve_points(configs, warmup, measure, cache)
    results, keys = resolution.results, resolution.keys
    for _ in range(resolution.cached):
        reporter.update(cached=True)
    jobs: dict[int, SimConfig] = {
        idx: configs[idx] for idx in resolution.missing
    }

    failures: dict[int, tuple[SimConfig, BaseException]] = {}

    def record(idx: int, result: RunResult, elapsed: float) -> None:
        results[idx] = result
        if cache is not None:
            cache.put(keys[idx], configs[idx], warmup, measure, result)
        reporter.update(elapsed=elapsed)

    if not jobs:
        pass
    elif timeout is not None:
        _run_parallel_timed(point_fn, jobs, warmup, measure, workers, retries,
                            record, failures, timeout, backoff)
    elif workers <= 1 or len(jobs) == 1:
        _run_serial(point_fn, jobs, warmup, measure, retries, record, failures,
                    backoff)
    else:
        _run_parallel(point_fn, jobs, warmup, measure, workers, retries,
                      record, failures, backoff)

    if failures:
        for _ in failures:
            reporter.update(failed=True)
        raise SweepExecutionError(failures)
    return results  # type: ignore[return-value]


def _run_serial(point_fn, jobs, warmup, measure, retries, record, failures,
                backoff) -> None:
    for idx, config in jobs.items():
        for attempt in range(retries + 1):
            if attempt > 0:
                _sleep(backoff.delay(attempt, key=f"point{idx}"))
            try:
                result, elapsed = _timed(point_fn, config, warmup, measure)
            except Exception as exc:
                if attempt == retries:
                    failures[idx] = (config, exc)
            else:
                record(idx, result, elapsed)
                break


def _run_parallel(point_fn, jobs, warmup, measure, workers, retries, record,
                  failures, backoff) -> None:
    pending = dict(jobs)
    attempts = dict.fromkeys(jobs, 0)
    round_no = 0
    while pending:
        if round_no > 0:
            # Every point still pending has failed at least once: back
            # off before the retry round instead of hammering a flapping
            # worker pool at full speed.
            _sleep(backoff.delay(round_no, key="round"))
        round_no += 1
        round_jobs = dict(pending)
        # Points whose futures resolve through as_completed are charged
        # there; the BrokenProcessPool handler below must charge only the
        # points that never got a resolved future, or a pool death after
        # partial progress double-charges the already-counted points.
        charged: set[int] = set()
        try:
            with ProcessPoolExecutor(
                max_workers=min(workers, len(round_jobs))
            ) as pool:
                futures = {
                    pool.submit(_timed, point_fn, config, warmup, measure): idx
                    for idx, config in round_jobs.items()
                }
                for future in as_completed(futures):
                    idx = futures[future]
                    attempts[idx] += 1
                    charged.add(idx)
                    exc = future.exception()
                    if exc is None:
                        result, elapsed = future.result()
                        record(idx, result, elapsed)
                        del pending[idx]
                    elif attempts[idx] > retries:
                        failures[idx] = (round_jobs[idx], exc)
                        del pending[idx]
                    # else: left pending — retried with a fresh pool.
        except BrokenProcessPool as exc:
            # The pool itself died (e.g. a worker was killed) before all
            # futures resolved; charge an attempt to whatever was not
            # already charged through its own resolved future this round.
            for idx in list(pending):
                if idx in charged:
                    continue
                attempts[idx] += 1
                if attempts[idx] > retries:
                    failures[idx] = (pending.pop(idx), exc)


def _run_parallel_timed(point_fn, jobs, warmup, measure, workers, retries,
                        record, failures, timeout, backoff) -> None:
    """Wave-based execution with a wall-clock kill switch per point.

    Points run in waves of at most ``workers`` so every point in a wave
    starts (almost) simultaneously and one shared deadline is fair to
    each.  On expiry the still-running workers are terminated — a hung
    engine cannot be interrupted any other way — and their points are
    either retried in a later wave or reported as
    :class:`PointTimeoutError`.  Worker crashes surface as exceptions on
    their futures (the executor breaks the remaining ones) and follow
    the ordinary retry path.
    """
    pending = dict(jobs)
    attempts = dict.fromkeys(jobs, 0)
    wave_size = max(1, workers)
    while pending:
        # Fresh points go first so a retried point never delays work
        # that has not had its first attempt yet; a wave made purely of
        # retries waits out the backoff before redispatching.
        ordered = sorted(pending, key=lambda idx: attempts[idx])
        wave = {idx: pending[idx] for idx in ordered[:wave_size]}
        wave_retry = min(attempts[idx] for idx in wave)
        if wave_retry > 0:
            _sleep(backoff.delay(wave_retry, key="wave"))
        pool = ProcessPoolExecutor(max_workers=len(wave))
        futures = {
            pool.submit(_timed, point_fn, config, warmup, measure): idx
            for idx, config in wave.items()
        }
        deadline = time.monotonic() + timeout
        not_done = set(futures)
        timed_out = False
        try:
            while not_done:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    timed_out = True
                    break
                done, not_done = wait(
                    not_done, timeout=remaining, return_when=FIRST_COMPLETED
                )
                for future in done:
                    idx = futures[future]
                    attempts[idx] += 1
                    exc = future.exception()
                    if exc is None:
                        result, elapsed = future.result()
                        record(idx, result, elapsed)
                        del pending[idx]
                    elif attempts[idx] > retries:
                        failures[idx] = (wave[idx], exc)
                        del pending[idx]
                    # else: left pending — retried in a later wave.
            if timed_out:
                for future in not_done:
                    idx = futures[future]
                    attempts[idx] += 1
                    if attempts[idx] > retries:
                        failures[idx] = (
                            wave[idx], PointTimeoutError(timeout, wave[idx])
                        )
                        del pending[idx]
                # A wedged worker never returns; SIGTERM is the only out.
                for proc in list(pool._processes.values()):
                    proc.terminate()
        finally:
            pool.shutdown(wait=not timed_out, cancel_futures=True)
