"""Simulation engine, statistics, results and sweeps."""

from repro.sim.engine import Engine
from repro.sim.stats import SimStats, WindowCounters
from repro.sim.results import RunResult, SweepResult, burton_normal_form
from repro.sim.sweep import run_point, run_sweep
from repro.sim.analysis import (
    OccupancyMonitor,
    format_breakdown,
    run_with_monitor,
    type_breakdown,
)

__all__ = [
    "Engine",
    "SimStats",
    "WindowCounters",
    "RunResult",
    "SweepResult",
    "burton_normal_form",
    "run_point",
    "run_sweep",
    "OccupancyMonitor",
    "type_breakdown",
    "format_breakdown",
    "run_with_monitor",
]
