"""Simulation engine, statistics, results, sweeps and parallel execution."""

from repro.sim.analysis import (
    OccupancyMonitor,
    format_breakdown,
    run_with_monitor,
    type_breakdown,
)
from repro.sim.engine import Engine
from repro.sim.parallel import (
    ResultCache,
    code_version,
    get_default_execution,
    point_key,
    run_points,
    set_default_execution,
)
from repro.sim.results import RunResult, SweepResult, burton_normal_form
from repro.sim.stats import SimStats, WindowCounters
from repro.sim.sweep import run_point, run_sweep

__all__ = [
    "Engine",
    "OccupancyMonitor",
    "ResultCache",
    "RunResult",
    "SimStats",
    "SweepResult",
    "WindowCounters",
    "burton_normal_form",
    "code_version",
    "format_breakdown",
    "get_default_execution",
    "point_key",
    "run_point",
    "run_points",
    "run_sweep",
    "run_with_monitor",
    "set_default_execution",
    "type_breakdown",
]
