"""Load sweeps producing Burton-Normal-Form throughput/latency curves.

Each sweep point builds a fresh engine (independent warm-up and
measurement, as in the paper: "each run lasts for 30,000 simulation
cycles beyond steady state") and records a
:class:`~repro.sim.results.RunResult`.  A sweep can stop early once the
network is clearly past saturation to save time.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.config import SimConfig
from repro.sim.engine import Engine
from repro.sim.results import RunResult, SweepResult


def run_point(config: SimConfig, warmup: int, measure: int) -> RunResult:
    """Run one (config, load) point and summarize the window."""
    engine = Engine(config)
    window = engine.run_measured(warmup, measure)
    nodes = engine.topology.num_nodes
    return RunResult(
        scheme=config.scheme,
        pattern=config.pattern,
        num_vcs=config.num_vcs,
        load=config.load,
        cycles=window.cycles,
        messages_delivered=window.messages_delivered,
        throughput_fpc=window.throughput_fpc(nodes),
        mean_latency=window.mean_latency(),
        latency_max=window.latency_max,
        deadlocks=window.deadlocks + window.deadlocks_unresolved,
        normalized_deadlocks=window.normalized_deadlocks(),
        transactions_completed=window.transactions_completed,
        mean_txn_latency=(
            window.txn_latency_sum / window.transactions_completed
            if window.transactions_completed
            else 0.0
        ),
        queue_mode=config.queue_mode,
    )


def run_sweep(
    config: SimConfig,
    loads: Sequence[float],
    warmup: int = 3000,
    measure: int = 10000,
    label: str | None = None,
    stop_past_saturation: bool = True,
) -> SweepResult:
    """Run ``config`` across the applied loads, lowest first.

    With ``stop_past_saturation`` the sweep ends once delivered
    throughput drops noticeably below its running maximum — i.e. "a
    point just beyond saturation" (Section 4.3.1).
    """
    label = label or f"{config.scheme}/{config.pattern}/{config.num_vcs}vc"
    sweep = SweepResult(label=label)
    best = 0.0
    for load in sorted(loads):
        point = run_point(config.with_(load=load), warmup, measure)
        sweep.points.append(point)
        best = max(best, point.throughput_fpc)
        if (
            stop_past_saturation
            and len(sweep.points) >= 3
            and point.throughput_fpc < 0.9 * best
        ):
            break
    return sweep
