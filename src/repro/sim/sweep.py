"""Load sweeps producing Burton-Normal-Form throughput/latency curves.

Each sweep point builds a fresh engine (independent warm-up and
measurement, as in the paper: "each run lasts for 30,000 simulation
cycles beyond steady state") and records a
:class:`~repro.sim.results.RunResult`.  A sweep can stop early once the
network is clearly past saturation to save time.

Points are dispatched through :mod:`repro.sim.parallel`, so a sweep can
fan out across worker processes and reuse cached results while staying
bit-identical to a serial run: early stopping is preserved by dispatching
loads in worker-sized chunks, lowest loads first, and truncating the
curve at the same point a serial sweep would.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.config import ExecutionConfig, SimConfig
from repro.sim.engine import build_engine
from repro.sim.parallel import ResultCache, get_default_execution, run_points
from repro.sim.results import RunResult, SweepResult
from repro.util.progress import ProgressReporter


def run_point(config: SimConfig, warmup: int, measure: int) -> RunResult:
    """Run one (config, load) point and summarize the window."""
    engine = build_engine(config)
    window = engine.run_measured(warmup, measure)
    return summarize_window(config, engine, window)


def summarize_window(config: SimConfig, engine, window) -> RunResult:
    """Fold one measured window into a :class:`RunResult`.

    Shared by :func:`run_point` and the campaign service's traced
    point execution (:mod:`repro.service.jobs`), so a streamed job and
    a plain sweep summarize identically by construction.
    """
    nodes = engine.topology.num_nodes
    return RunResult(
        scheme=config.scheme,
        pattern=config.pattern,
        num_vcs=config.num_vcs,
        load=config.load,
        cycles=window.cycles,
        messages_delivered=window.messages_delivered,
        throughput_fpc=window.throughput_fpc(nodes),
        mean_latency=window.mean_latency(),
        latency_max=window.latency_max,
        deadlocks=window.deadlocks + window.deadlocks_unresolved,
        normalized_deadlocks=window.normalized_deadlocks(),
        transactions_completed=window.transactions_completed,
        mean_txn_latency=(
            window.txn_latency_sum / window.transactions_completed
            if window.transactions_completed
            else 0.0
        ),
        queue_mode=config.queue_mode,
    )


def run_sweep(
    config: SimConfig,
    loads: Sequence[float],
    warmup: int = 3000,
    measure: int = 10000,
    label: str | None = None,
    stop_past_saturation: bool = True,
    execution: ExecutionConfig | None = None,
) -> SweepResult:
    """Run ``config`` across the applied loads, lowest first.

    With ``stop_past_saturation`` the sweep ends once delivered
    throughput drops noticeably below its running maximum — i.e. "a
    point just beyond saturation" (Section 4.3.1).

    ``execution`` controls workers, caching and progress; when omitted
    the process-wide default applies
    (:func:`repro.sim.parallel.get_default_execution`).  Points computed
    past an early stop by a parallel chunk are cached but excluded from
    the curve, so the returned points match a serial sweep exactly.
    """
    execution = execution or get_default_execution()
    label = label or f"{config.scheme}/{config.pattern}/{config.num_vcs}vc"
    cache = ResultCache(execution.cache_dir) if execution.use_cache else None
    reporter = ProgressReporter(
        total=len(loads), label=label, enabled=execution.progress
    )
    farm_workers = None
    if execution.farm_hosts is not None:
        # Imported lazily: the farm depends on this module's point
        # function through repro.sim.parallel, and sweeps that never
        # leave the local machine shouldn't pay for transports.
        from repro.farm import farm_width, parse_hosts

        farm_workers = parse_hosts(
            execution.farm_hosts, point_timeout=execution.point_timeout
        )
    sweep = SweepResult(label=label)
    best = 0.0
    ordered = sorted(loads)
    chunk = (
        max(1, farm_width(farm_workers))
        if farm_workers is not None
        else max(1, execution.workers)
    )
    try:
        for start in range(0, len(ordered), chunk):
            batch = ordered[start:start + chunk]
            batch_configs = [config.with_(load=load) for load in batch]
            if farm_workers is not None:
                from repro.farm import farm_run_points

                points = farm_run_points(
                    batch_configs,
                    warmup,
                    measure,
                    farm_workers,
                    cache=cache,
                    retries=execution.retries,
                    name=label,
                )
                for _ in points:
                    reporter.update()
            else:
                points = run_points(
                    batch_configs,
                    warmup,
                    measure,
                    workers=execution.workers,
                    cache=cache,
                    retries=execution.retries,
                    reporter=reporter,
                    timeout=execution.point_timeout,
                )
            for point in points:
                sweep.points.append(point)
                best = max(best, point.throughput_fpc)
                if (
                    stop_past_saturation
                    and len(sweep.points) >= 3
                    and point.throughput_fpc < 0.9 * best
                ):
                    return sweep
    finally:
        reporter.finish()
    return sweep
