"""Simulation configuration.

One dataclass carries every knob of a run; defaults reproduce the
paper's Table 2 ("Default simulation parameters for FlexSim"):
8x8 torus, wormhole switching, 4 VCs per link, 2-flit channel buffers,
4-flit requests / 20-flit replies (set on the protocol's message types),
one processor per node, 40-clock message service, random traffic and
16-message NI queues.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.faults.models import FaultSpec
from repro.util.errors import ConfigurationError

_VALID_SCHEMES = ("SA", "DR", "PR", "NONE")
_VALID_TOPOLOGIES = (
    "torus", "mesh2d", "fullmesh", "irregular", "fat_tree", "file"
)
_VALID_QUEUE_MODES = ("auto", "shared", "per-net", "per-type")
_VALID_BACKENDS = ("reference", "vector")
_VALID_DETECTORS = ("endpoint", "cmh", "timeout")


@dataclass(frozen=True)
class SimConfig:
    """All parameters of a single simulation run."""

    # --- network (Table 2) ---
    #: network shape: "torus" (the paper's k-ary n-cube), "mesh2d" (open
    #: mesh, XY escape without datelines), "fullmesh" (direct single-hop
    #: links, Cano-style routing), "irregular" (the built-in 9-router
    #: example graph) or "file" (JSON graph named by ``topology_file``).
    #: See :func:`repro.network.topology.build_topology`.
    topology: str = "torus"
    #: JSON topology description for ``topology="file"``.
    topology_file: str | None = None
    #: radix per dimension for grid topologies; for "fullmesh" the
    #: router count is ``prod(dims)``; ignored by "irregular"/"file".
    dims: tuple[int, ...] = (8, 8)
    bristling: int = 1
    num_vcs: int = 4
    flit_buffer_depth: int = 2

    # --- deadlock handling ---
    scheme: str = "PR"
    #: split per-class channel partitioning vs Martinez shared extras.
    shared_extras: bool = False
    #: queue organisation; "auto" picks the scheme's default
    #: (SA: per-type, DR: per-net, PR/NONE: shared).  Setting "per-type"
    #: for DR/PR yields the paper's Figure 11 "QA" configurations.
    queue_mode: str = "auto"
    #: deadlock detection mechanism: "endpoint" is the paper's
    #: three-condition detector; "cmh" is Chandy-Misra-Haas edge
    #: chasing with real probe messages; "timeout" is a cheap
    #: progress-timeout heuristic (false-positive-prone by design).
    #: The CWG checker (``cwg_interval``) stays available as ground
    #: truth regardless of this choice.
    detector: str = "endpoint"
    #: endpoint detection timeout T (cycles), Section 4.1.
    detection_threshold: int = 25
    #: occupancy fraction both queues must exceed (1.0 = full).
    occupancy_threshold: float = 1.0
    #: timeout detector: cycles an input queue may hold a waiting
    #: message with no version change before the detector declares.
    timeout_threshold: int = 200
    #: CMH: cycles a site must be locally blocked before it starts an
    #: edge chase (small — probes, not timers, provide the certainty).
    cmh_block_threshold: int = 4
    #: CMH: re-chase period while a site stays blocked undeclared
    #: (covers probes that died against a then-moving frontier).
    cmh_probe_interval: int = 64
    #: PR: cycles a packet header may block in-network before it is
    #: considered potentially deadlocked (Disha timeout).
    router_timeout: int = 25
    #: DR recovery aggressiveness: "minimum" deflects exactly one message
    #: per detection event (the paper's evaluation setting); "drain"
    #: keeps deflecting queue heads until one would generate a
    #: terminating reply or the output request queue falls below its
    #: threshold (the DASH behaviour of the paper's footnote 4).
    recovery_policy: str = "minimum"
    #: PR token ring order: "interleaved" visits each router followed by
    #: its NIs (default); "routers-first" visits all routers then all
    #: NIs.  The paper notes the token path is logical and configurable.
    token_ring: str = "interleaved"

    # --- traffic ---
    pattern: str = "PAT721"
    #: applied load: request messages generated per node per cycle.
    load: float = 0.005

    # --- endpoints ---
    queue_capacity: int = 16
    service_time: int = 40
    #: service duration of terminating messages (MSHR absorption).
    sink_time: int = 1
    #: MSHRs per node: bound on concurrently outstanding transactions.
    max_outstanding: int = 16

    # --- run control ---
    #: engine implementation: "reference" is the object-per-flit engine,
    #: "vector" the struct-of-arrays backend (:mod:`repro.sim.vector`).
    #: Both produce bit-identical results; see EXPERIMENTS.md.
    backend: str = "reference"
    seed: int = 1
    #: optional CWG-based detection interval (0 = off; paper used 50).
    cwg_interval: int = 0

    # --- robustness ---
    #: faults to inject (see :mod:`repro.faults`); empty = healthy run.
    faults: tuple[FaultSpec, ...] = ()
    #: run the full invariant suite every N cycles (0 = off).
    invariants_every: int = 0
    #: raise :class:`~repro.util.errors.LivenessError` after this many
    #: progress-free cycles with messages in flight (0 = off).
    watchdog_timeout: int = 0

    def __post_init__(self) -> None:
        if self.topology not in _VALID_TOPOLOGIES:
            raise ConfigurationError(
                f"topology {self.topology!r} not in {_VALID_TOPOLOGIES}"
            )
        if self.topology == "file" and not self.topology_file:
            raise ConfigurationError(
                "topology 'file' needs topology_file to name a JSON graph"
            )
        if self.scheme not in _VALID_SCHEMES:
            raise ConfigurationError(
                f"scheme {self.scheme!r} not in {_VALID_SCHEMES}"
            )
        if self.queue_mode not in _VALID_QUEUE_MODES:
            raise ConfigurationError(
                f"queue_mode {self.queue_mode!r} not in {_VALID_QUEUE_MODES}"
            )
        if self.backend not in _VALID_BACKENDS:
            raise ConfigurationError(
                f"backend {self.backend!r} not in {_VALID_BACKENDS}"
            )
        if self.detector not in _VALID_DETECTORS:
            raise ConfigurationError(
                f"detector {self.detector!r} not in {_VALID_DETECTORS}"
            )
        if self.timeout_threshold < 1:
            raise ConfigurationError("timeout_threshold must be positive")
        if self.cmh_block_threshold < 1:
            raise ConfigurationError("cmh_block_threshold must be positive")
        if self.cmh_probe_interval < 1:
            raise ConfigurationError("cmh_probe_interval must be positive")
        if self.num_vcs < 1:
            raise ConfigurationError("num_vcs must be positive")
        if self.flit_buffer_depth < 1:
            raise ConfigurationError("flit_buffer_depth must be positive")
        if self.queue_capacity < 1:
            raise ConfigurationError("queue_capacity must be positive")
        if not 0.0 <= self.load <= 1.0:
            raise ConfigurationError("load must be a per-cycle probability")
        if self.max_outstanding < 1:
            raise ConfigurationError("max_outstanding must be positive")
        if self.recovery_policy not in ("minimum", "drain"):
            raise ConfigurationError(
                f"recovery_policy {self.recovery_policy!r} not in"
                " ('minimum', 'drain')"
            )
        if self.token_ring not in ("interleaved", "routers-first"):
            raise ConfigurationError(
                f"token_ring {self.token_ring!r} not in"
                " ('interleaved', 'routers-first')"
            )
        if not isinstance(self.faults, tuple):
            # accept any iterable of specs; normalise for hashing/caching.
            object.__setattr__(self, "faults", tuple(self.faults))
        for spec in self.faults:
            if not isinstance(spec, FaultSpec):
                raise ConfigurationError(
                    f"faults entries must be FaultSpec, got {spec!r}"
                )
        if self.invariants_every < 0:
            raise ConfigurationError("invariants_every must be >= 0")
        if self.watchdog_timeout < 0:
            raise ConfigurationError("watchdog_timeout must be >= 0")

    def with_(self, **kwargs) -> "SimConfig":
        """A modified copy (convenience for sweeps)."""
        return replace(self, **kwargs)


@dataclass(frozen=True)
class ExecutionConfig:
    """How sweep points are *executed* (not what they simulate).

    Kept separate from :class:`SimConfig` so that execution knobs —
    worker count, caching, progress reporting — can never change a
    result or leak into a cache key.
    """

    #: worker processes; 1 = run in-process (serial).
    workers: int = 1
    #: consult/populate the on-disk result cache.
    use_cache: bool = True
    #: cache directory (created on first write).
    cache_dir: str = ".repro_cache"
    #: extra attempts for a crashed point before it is reported.
    retries: int = 1
    #: emit a progress line (points done/total, ETA, cache hits).
    progress: bool = False
    #: wall-clock seconds a single point may run before its worker is
    #: killed and the point retried (None = no timeout).
    point_timeout: float | None = None
    #: route point execution through the distributed farm
    #: (:mod:`repro.farm`) instead of a local process pool: a
    #: comma-separated host spec in the ``repro farm --hosts`` syntax
    #: (``local[:N]``, ``ssh:HOST[:python]``, ``ext:DIR``).  None keeps
    #: local execution.  Results stay bit-identical either way; like
    #: every other field here, this can never leak into a cache key.
    farm_hosts: str | None = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigurationError("workers must be positive")
        if self.retries < 0:
            raise ConfigurationError("retries must be non-negative")
        if self.point_timeout is not None and self.point_timeout <= 0:
            raise ConfigurationError("point_timeout must be positive")
        if self.farm_hosts is not None and not self.farm_hosts.strip():
            raise ConfigurationError("farm_hosts must name at least one host")
