"""Bench: design-choice ablations (partitioning, thresholds, timeouts)."""

from repro.experiments.ablations import run


def test_ablations(once, scale):
    results = once(run, scale)
    sat = {
        name: {s.label: s.saturation_throughput() for s in sweeps}
        for name, sweeps in results.items()
    }
    part = sat["partitioning"]
    assert len(part) == 4
    # Shared extras raise availability (3 -> 9 for SA at 16 VCs); they
    # must not cost throughput.
    assert part["SA/shared-extras"] > 0.85 * part["SA/split"]
    assert part["DR/shared-extras"] > 0.85 * part["DR/split"]
    # Detection threshold: recovery still works across T values.
    assert all(v > 0 for v in sat["detection_threshold"].values())
    # Router timeout: PR functions across the sweep.
    assert all(v > 0 for v in sat["router_timeout"].values())
