"""Bench: regenerate Table 1 (response-type mix per application)."""

import pytest

from repro.experiments.table1_responses import PAPER_TABLE1, run


def test_table1(once, scale):
    rows = once(run, scale)
    for app, paper in PAPER_TABLE1.items():
        measured = rows[app]
        for cls, want in paper.items():
            assert measured[cls] == pytest.approx(want, abs=0.06), (app, cls)
