"""Bench: Figure 8 (4 VCs) — PR dominates when channels are scarce."""

from repro.experiments.fig8_4vc import run
from repro.experiments.figures import saturation_by_scheme


def test_fig8(once, scale):
    panels = once(run, scale)
    sat = saturation_by_scheme(panels)
    # PAT100: "over 100% more throughput than SA" — we assert a clear win.
    assert sat["PAT100"]["PR"] > 1.15 * sat["PAT100"]["SA"]
    # PAT721: "up to 100% more throughput than DR".
    assert sat["PAT721"]["PR"] > 1.2 * sat["PAT721"]["DR"]
    # "As the average chain length increases the difference in improvement
    # reduces but is still substantial": PR never loses.
    for pattern in ("PAT451", "PAT271", "PAT280"):
        assert sat[pattern]["PR"] > 0.95 * sat[pattern]["DR"], pattern
    ratio_721 = sat["PAT721"]["PR"] / sat["PAT721"]["DR"]
    ratio_271 = sat["PAT271"]["PR"] / sat["PAT271"]["DR"]
    assert ratio_721 > ratio_271
    # SA is infeasible for chains > 2 at 4 VCs: absent from those panels.
    assert "SA" not in sat["PAT721"]
    # DR is invalid for the two-type PAT100.
    assert "DR" not in sat["PAT100"]
