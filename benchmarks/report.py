"""Benchmark report: measured cycles/second for the tracked scenarios.

Runs the same engine scenarios as ``test_engine_speed.py`` with a plain
timer (warm-up, then best-of-N timed windows) and writes
``BENCH_engine.json`` — cycles/sec per scenario plus machine info and
the git revision — so the repository carries a performance trajectory
over time.

Usage::

    PYTHONPATH=src python benchmarks/report.py              # full run
    PYTHONPATH=src python benchmarks/report.py --smoke      # CI subset
    PYTHONPATH=src python benchmarks/report.py --check BENCH_engine.json

``--check`` compares a fresh measurement against a previously written
report and exits non-zero if any shared scenario regressed by more than
``--tolerance`` (default 30%), which is what the CI benchmark job
enforces against the checked-in baseline.

Measurement methodology: scenarios are timed with CPU time
(``time.process_time``), which is immune to scheduler steal on busy
hosts, and every report carries a calibration score — a fixed
pure-Python workload timed the same way — so ``--check`` can normalize
for machine-speed differences between the baseline and the
measurement.  Even so, wall-to-wall machine drift (frequency scaling,
noisy neighbours) is typically several percent across minutes: tight
tolerances (a few %) are only meaningful against a baseline produced
moments earlier on the same machine, the way the CI trace-overhead
guard compares against the report written earlier in the same job.
"""

from __future__ import annotations

import argparse
import json
import platform
import subprocess
import sys
import time
from pathlib import Path

from repro import SimConfig
from repro.sim.engine import build_engine

#: name -> engine kwargs.  Matches benchmarks/test_engine_speed.py.
SCENARIOS = {
    "PR_light_load": dict(scheme="PR", load=0.004),
    "DR_light_load": dict(scheme="DR", load=0.004),
    "NONE_light_load": dict(scheme="NONE", load=0.004),
    "PR_saturated": dict(scheme="PR", load=0.014),
    "DR_saturated": dict(scheme="DR", load=0.014),
    "PR_16vc": dict(scheme="PR", load=0.012, num_vcs=16),
}

#: Fast subset for CI smoke runs.
SMOKE_SCENARIOS = ("PR_light_load", "PR_saturated")

#: Report key for a scenario measured on a non-default backend.
def scenario_key(name: str, backend: str) -> str:
    return name if backend == "reference" else f"{name}@{backend}"

WARMUP_CYCLES = 500
MEASURE_CYCLES = 400

#: iterations of the calibration loop (a fixed pure-Python workload).
CALIBRATION_ITERS = 200_000


def measure_scenario(
    name: str, *, rounds: int = 3, traced: bool = False,
    backend: str = "reference",
) -> float:
    """Best-of-``rounds`` cycles/second (CPU time) for one scenario.

    ``traced`` attaches a message-level tracer (the always-on telemetry
    configuration), measuring the cost of live event recording; it is
    reference-only, as is tracing itself.
    """
    kw = dict(SCENARIOS[name])
    engine = build_engine(
        SimConfig(pattern="PAT721", seed=3, backend=backend, **kw)
    )
    if traced:
        from repro.telemetry import Tracer

        engine.attach_tracer(Tracer(level="message"))
    engine.run(WARMUP_CYCLES)
    best = 0.0
    for _ in range(rounds):
        t0 = time.process_time()
        engine.run(MEASURE_CYCLES)
        elapsed = time.process_time() - t0
        best = max(best, MEASURE_CYCLES / elapsed)
    return best


def calibrate(rounds: int = 5) -> float:
    """Machine-speed score: best-of-``rounds`` iterations/sec (CPU time)
    of a fixed interpreter-bound loop.  Stored in every report so
    ``--check`` can rescale a baseline written on different hardware.
    """
    best = 0.0
    for _ in range(rounds):
        t0 = time.process_time()
        acc = 0
        d = {}
        for i in range(CALIBRATION_ITERS):
            d[i & 63] = acc
            acc += i ^ (acc >> 3)
        elapsed = time.process_time() - t0
        best = max(best, CALIBRATION_ITERS / elapsed)
    return best


def git_sha() -> str:
    cwd = Path(__file__).resolve().parent
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10, cwd=cwd,
        )
        if out.returncode != 0:
            return "unknown"
        sha = out.stdout.strip()
        dirty = subprocess.run(
            ["git", "status", "--porcelain"],
            capture_output=True, text=True, timeout=10, cwd=cwd,
        )
        if dirty.returncode == 0 and dirty.stdout.strip():
            sha += "-dirty"
        return sha
    except OSError:
        return "unknown"


def machine_info() -> dict:
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "machine": platform.machine(),
        "system": platform.system(),
        "processor": platform.processor() or "unknown",
    }


def build_report(
    names, rounds: int, traced: bool = False,
    backends: tuple[str, ...] = ("reference",),
) -> dict:
    results = {}
    speedups = {}
    for name in names:
        per_backend = {}
        for backend in backends:
            key = scenario_key(name, backend)
            cps = measure_scenario(name, rounds=rounds, backend=backend)
            results[key] = round(cps, 1)
            per_backend[backend] = cps
            print(f"{key:>22}: {cps:>8.0f} cycles/sec", file=sys.stderr)
        if "reference" in per_backend and "vector" in per_backend:
            ratio = per_backend["vector"] / per_backend["reference"]
            speedups[name] = round(ratio, 2)
            print(f"{name + ' speedup':>22}: {ratio:>7.2f}x vector/reference",
                  file=sys.stderr)
        if traced:
            cps = per_backend["reference"]
            traced_cps = measure_scenario(name, rounds=rounds, traced=True)
            results[f"{name}+trace"] = round(traced_cps, 1)
            print(f"{name + '+trace':>22}: {traced_cps:>8.0f} cycles/sec"
                  f" ({traced_cps / cps:.2f}x of untraced)",
                  file=sys.stderr)
    report = {
        "schema": 3,
        "git_sha": git_sha(),
        "machine": machine_info(),
        "warmup_cycles": WARMUP_CYCLES,
        "measure_cycles": MEASURE_CYCLES,
        "calibration_ops_per_second": round(calibrate(), 1),
        "cycles_per_second": results,
    }
    if speedups:
        report["vector_speedup"] = speedups
    return report


def check_regression(report: dict, baseline_path: Path, tolerance: float) -> int:
    """Exit status: 0 if no shared scenario regressed beyond tolerance.

    When both reports carry a calibration score the baseline is rescaled
    by the machine-speed ratio first, so the comparison survives a
    hardware change.  Residual drift is still a few percent over
    minutes; tolerances tighter than that need a baseline written in
    the same session (see the CI trace-overhead guard).
    """
    baseline = json.loads(baseline_path.read_text("utf-8"))
    base_results = baseline.get("cycles_per_second", {})
    scale = 1.0
    base_cal = baseline.get("calibration_ops_per_second")
    cal = report.get("calibration_ops_per_second")
    if base_cal and cal:
        scale = cal / base_cal
        # The calibration score itself jitters a few percent, so rescale
        # only across a clear hardware change; within one machine the
        # raw comparison is the lower-noise one.
        if 0.80 <= scale <= 1.25:
            scale = 1.0
        else:
            print(f"machine-speed normalization: x{scale:.3f} "
                  f"(calibration {cal:.0f} vs baseline {base_cal:.0f})",
                  file=sys.stderr)
    failures = []
    missing = []
    for name, measured in report["cycles_per_second"].items():
        base = base_results.get(name)
        if not base:
            # `+trace` variants are informational (the guard's subject is
            # the *untraced* path), so their absence from an untraced
            # baseline is expected, not a coverage gap.
            if "+" not in name:
                missing.append(name)
            continue
        ratio = measured / (base * scale)
        status = "ok" if ratio >= 1.0 - tolerance else "REGRESSED"
        print(f"{name:>22}: {measured:>8.0f} vs baseline {base:>8.0f} "
              f"({ratio:.2f}x) {status}", file=sys.stderr)
        if ratio < 1.0 - tolerance:
            failures.append(name)
    if missing:
        # A scenario that was measured but has no baseline entry means
        # the checked-in report predates it: the gate would silently
        # stop covering new scenarios.  Fail with the fix spelled out.
        print(
            "scenarios missing from baseline "
            f"{baseline_path}: {', '.join(missing)}\n"
            "regenerate it with: PYTHONPATH=src python benchmarks/report.py "
            "--backend both --rounds 5",
            file=sys.stderr,
        )
        return 1
    if failures:
        print(f"regression beyond {tolerance:.0%}: {', '.join(failures)}",
              file=sys.stderr)
        return 1
    return 0


def check_speedup_floor(report: dict, floor: float) -> int:
    """Exit status: 0 if every measured vector speedup meets ``floor``.

    The floor is the honest measured multiplier recorded in the
    baseline (see ``vector_speedup`` in BENCH_engine.json), enforced by
    the CI engine-benchmark matrix so the vector backend cannot quietly
    decay back toward reference speed.
    """
    speedups = report.get("vector_speedup")
    if not speedups:
        print("--min-speedup needs both backends (use --backend both)",
              file=sys.stderr)
        return 1
    failures = [
        f"{name} {ratio:.2f}x" for name, ratio in speedups.items()
        if ratio < floor
    ]
    if failures:
        print(f"vector speedup below the {floor:.2f}x floor: "
              + ", ".join(failures), file=sys.stderr)
        return 1
    print(f"vector speedup floor {floor:.2f}x met: "
          + ", ".join(f"{n} {r:.2f}x" for n, r in speedups.items()),
          file=sys.stderr)
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="run only the fast CI scenario subset")
    parser.add_argument("--rounds", type=int, default=5,
                        help="timed rounds per scenario (best is kept)")
    parser.add_argument("--output", type=Path,
                        default=Path(__file__).resolve().parent.parent
                        / "BENCH_engine.json",
                        help="where to write the JSON report")
    parser.add_argument("--check", type=Path, default=None, metavar="BASELINE",
                        help="compare against a baseline report; exit 1 on "
                             "regression beyond --tolerance")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed fractional slowdown in --check mode")
    parser.add_argument("--traced", action="store_true",
                        help="also measure each scenario with a message-"
                             "level tracer attached (reported as "
                             "<name>+trace)")
    parser.add_argument("--backend", choices=("reference", "vector", "both"),
                        default="reference",
                        help="engine backend(s) to measure; 'both' also "
                             "records per-scenario vector speedups")
    parser.add_argument("--min-speedup", type=float, default=None,
                        metavar="X",
                        help="with --backend both: exit 1 if any scenario's "
                             "vector speedup falls below X")
    args = parser.parse_args(argv)

    backends = (
        ("reference", "vector") if args.backend == "both" else (args.backend,)
    )
    if args.traced and "reference" not in backends:
        parser.error("--traced requires the reference backend")
    if args.min_speedup is not None and args.backend != "both":
        parser.error("--min-speedup requires --backend both")

    names = SMOKE_SCENARIOS if args.smoke else tuple(SCENARIOS)
    report = build_report(
        names, rounds=args.rounds, traced=args.traced, backends=backends
    )
    args.output.write_text(json.dumps(report, indent=2) + "\n", "utf-8")
    print(f"wrote {args.output}", file=sys.stderr)
    status = 0
    if args.check is not None:
        status = check_regression(report, args.check, args.tolerance)
    if args.min_speedup is not None:
        status = check_speedup_floor(report, args.min_speedup) or status
    return status


if __name__ == "__main__":
    raise SystemExit(main())
