"""Micro-benchmarks of the simulator core (wall-clock tracking).

These are classic pytest-benchmark measurements (multiple rounds) of the
hot paths, so performance regressions in the flit-movement engine or the
scheme controllers show up in CI history.
"""

import pytest

from repro import SimConfig
from repro.sim.engine import Engine


def make_engine(scheme, load, **kw):
    e = Engine(SimConfig(scheme=scheme, pattern=kw.pop("pattern", "PAT721"),
                         load=load, seed=3, **kw))
    e.run(500)  # warm the network to a realistic occupancy
    return e


@pytest.mark.parametrize("scheme", ["PR", "DR", "NONE"])
def test_cycles_per_second_light_load(benchmark, scheme):
    engine = make_engine(scheme, load=0.004)
    benchmark(engine.run, 200)


@pytest.mark.parametrize("scheme", ["PR", "DR"])
def test_cycles_per_second_saturated(benchmark, scheme):
    engine = make_engine(scheme, load=0.014)
    benchmark(engine.run, 200)


def test_cycles_16vc(benchmark):
    engine = make_engine("PR", load=0.012, num_vcs=16)
    benchmark(engine.run, 200)


def test_engine_construction(benchmark):
    benchmark(lambda: Engine(SimConfig(scheme="PR", load=0.004)))


def test_cwg_snapshot_cost(benchmark):
    from repro.core.cwg import detect_deadlock

    engine = make_engine("PR", load=0.012)
    benchmark(detect_deadlock, engine)
