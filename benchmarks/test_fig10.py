"""Bench: Figure 10 (16 VCs) — endpoint message coupling dominates."""

from repro.experiments.fig10_16vc import run
from repro.experiments.figures import saturation_by_scheme


def test_fig10(once, scale):
    panels = once(run, scale)
    sat = saturation_by_scheme(panels)
    # "Both of these schemes [DR, PR] have lower throughput than SA due
    # to ... message coupling (and blocking) at network endpoints."
    couplings_hurt = 0
    for pattern, row in sat.items():
        assert row["SA"] > 0.9 * row["PR"], pattern
        if row["SA"] > row["PR"]:
            couplings_hurt += 1
    assert couplings_hurt >= 3  # SA wins on most shared-queue panels
    # With 16 VCs channel balance is no longer the bottleneck: DR is not
    # dramatically behind SA the way it is at 8 VCs.
    for pattern, row in sat.items():
        assert row["DR"] > 0.75 * row["SA"], pattern
