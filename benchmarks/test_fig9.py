"""Bench: Figure 9 (8 VCs) — SA lags on skewed mixes; DR approaches PR."""

from repro.experiments.fig9_8vc import run
from repro.experiments.figures import saturation_by_scheme


def test_fig9(once, scale):
    panels = once(run, scale)
    sat = saturation_by_scheme(panels)
    # "SA saturates at an early load ... particularly acute when the
    # message distribution is concentrated on only a few types".
    assert sat["PAT721"]["PR"] > 1.1 * sat["PAT721"]["SA"]
    # "the difference between SA and PR [is] negligible" for PAT100.
    assert abs(sat["PAT100"]["PR"] - sat["PAT100"]["SA"]) < 0.3 * sat["PAT100"]["PR"]
    # "the difference between DR and PR [is] practically negligible" for
    # chains longer than two.
    for pattern in ("PAT451", "PAT271", "PAT280"):
        assert abs(sat[pattern]["PR"] - sat[pattern]["DR"]) < 0.3 * sat[pattern]["PR"]
    # All three schemes are feasible at 8 VCs for four-type patterns.
    assert {"SA", "DR", "PR"} <= set(sat["PAT721"])
