"""Bench: regenerate Table 3 (message-type distributions)."""

import pytest

from repro.experiments.table3_distributions import run


def test_table3(once, scale):
    rows = once(run, scale)
    for name, row in rows.items():
        cf, mc, paper = row["closed_form"], row["monte_carlo"], row["paper"]
        # Monte Carlo agrees with the closed form.
        for a, b in zip(cf, mc):
            assert a == pytest.approx(b, abs=0.02)
        if name == "PAT721":
            # Paper erratum: row sums to 112%; ours must sum to 100%.
            assert sum(cf) == pytest.approx(1.0)
            assert cf[1] == pytest.approx(paper[1], abs=0.005)  # m2 matches
            assert cf[2] == pytest.approx(paper[2], abs=0.005)  # m3 matches
        else:
            for a, p in zip(cf, paper):
                assert a == pytest.approx(p, abs=0.005)
