"""Bench: Section 4.2.2 — zero deadlocks under traces, incl. bristling."""

from repro.experiments.trace_deadlocks import run


def test_trace_deadlocks(once, scale):
    rows = once(run, scale)
    for app, configs in rows.items():
        for name, r in configs.items():
            # Paper: "no deadlock was observed with the bristled networks
            # for all applications."
            assert r["cwg_knots"] == 0, (app, name)
            assert r["timeout_episodes"] == 0, (app, name)
            assert r["messages"] > 0
