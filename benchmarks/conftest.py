"""Benchmark configuration.

Each ``benchmarks/test_*.py`` regenerates one of the paper's tables or
figures inside a pytest-benchmark timer and asserts its qualitative
shape.  Scale is selected with the ``REPRO_SCALE`` environment variable
(``smoke`` default, ``paper`` for the full 30,000-cycle windows).
"""

import os

import pytest


@pytest.fixture(scope="session")
def scale() -> str:
    return os.environ.get("REPRO_SCALE", "smoke")


@pytest.fixture
def once(benchmark):
    """Run an expensive experiment exactly once under the benchmark timer."""

    def _run(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return _run
