"""Bench: regenerate Figure 6 (load-rate distributions)."""

from repro.experiments.fig6_load_rates import run


def test_fig6(once, scale):
    rows = once(run, scale)
    # FFT, LU and Water spend most of their time under 5% of capacity.
    for app in ("fft", "lu", "water"):
        assert rows[app]["frac_below_5pct"] > 0.6, app
        assert rows[app]["mean"] < 0.08, app
    # Radix is the only application approaching saturation.
    assert rows["radix"]["mean"] > 0.08
    assert rows["radix"]["max"] > 0.2
    assert rows["radix"]["mean"] > 2 * rows["fft"]["mean"]
