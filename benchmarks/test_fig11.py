"""Bench: Figure 11 — per-type queue separation (QA) at the endpoints."""

from repro.experiments.fig11_queues import run


def test_fig11(once, scale):
    sweeps = once(run, scale)
    sat = {s.label: s.saturation_throughput() for s in sweeps}
    sa = sat["SA/PAT271/16vc"]
    dr, pr = sat["DR/PAT271/16vc"], sat["PR/PAT271/16vc"]
    dr_qa, pr_qa = sat["DR-QA/PAT271/16vc"], sat["PR-QA/PAT271/16vc"]
    # Shared queues bottleneck DR and PR below SA...
    assert sa >= 0.95 * max(dr, pr)
    # ...and QA separation recovers the loss (paper: "both the DR and PR
    # schemes outperform SA" with per-type queues).
    assert dr_qa > dr and pr_qa > pr
    assert dr_qa > 0.95 * sa
    assert pr_qa > 0.95 * sa
